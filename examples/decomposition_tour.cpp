// A guided tour of Section 3 on the paper's own Figure 1 tree: heavy-light
// decomposition, meta tree, binarized paths, labels — printed step by step,
// then the singleton-cut machinery of Section 4 on a small weighted graph
// (the Figure 3 setting).
#include <cstdio>

#include "graph/generators.h"
#include "mincut/singleton.h"
#include "support/rng.h"
#include "tree/binarized_path.h"
#include "tree/low_depth.h"

int main() {
  using namespace ampccut;

  // Figure 1's example: a 10-vertex tree. Vertex 0 is the root; the long
  // spine 0-1-2-3 with subtrees makes heavy paths visible.
  WGraph t;
  t.n = 10;
  t.add_edge(0, 1);  // spine
  t.add_edge(1, 2);
  t.add_edge(2, 3);
  t.add_edge(1, 4);  // light branch
  t.add_edge(4, 5);
  t.add_edge(2, 6);  // leaf
  t.add_edge(0, 7);  // light branch
  t.add_edge(7, 8);
  t.add_edge(8, 9);
  std::vector<TimeStep> times(t.edges.size());
  for (std::size_t i = 0; i < times.size(); ++i)
    times[i] = static_cast<TimeStep>(i + 1);

  const RootedTree rt = build_rooted_tree(t.n, t.edges, times, 0);
  const HeavyLight hl = build_heavy_light(rt);

  std::printf("== Heavy-light decomposition (Figure 1) ==\n");
  for (std::uint32_t p = 0; p < hl.num_paths(); ++p) {
    std::printf("heavy path %u:", p);
    for (const VertexId v : hl.paths[p]) std::printf(" %u", v);
    std::printf("\n");
  }

  std::printf("\n== Binarized path of the longest heavy path (Def. 5) ==\n");
  std::uint32_t longest = 0;
  for (std::uint32_t p = 0; p < hl.num_paths(); ++p) {
    if (hl.paths[p].size() > hl.paths[longest].size()) longest = p;
  }
  const std::uint64_t L = hl.paths[longest].size();
  std::printf("path length %llu -> heap tree with %llu nodes, height %u\n",
              static_cast<unsigned long long>(L),
              static_cast<unsigned long long>(binpath::num_nodes(L)),
              binpath::height(L));
  for (std::uint64_t j = 0; j < L; ++j) {
    std::printf("  path pos %llu (vertex %u): leaf node %llu, label-depth %u\n",
                static_cast<unsigned long long>(j), hl.paths[longest][j],
                static_cast<unsigned long long>(binpath::leaf_index(L, j)),
                binpath::label_at(L, j));
  }

  const auto d = build_low_depth_decomposition(rt, hl);
  std::printf("\n== Generalized low-depth decomposition (Def. 1) ==\n");
  std::printf("height %u; labels:", d.height);
  for (VertexId v = 0; v < t.n; ++v) std::printf(" %u:%u", v, d.label[v]);
  std::printf("\nvalid per Definition 1: %s\n",
              validate_low_depth_decomposition(rt, d) ? "yes" : "no");

  std::printf("\n== Section 4 on a weighted graph (Figure 3 setting) ==\n");
  WGraph g = gen_random_connected(12, 20, 4);
  randomize_weights(g, 5, 9);
  const ContractionOrder o = make_contraction_order(g, 2);
  const auto cut = min_singleton_cut_oracle(g, o);
  std::printf("smallest singleton cut during contraction: weight %llu, "
              "bag(%u, t=%u)\n",
              static_cast<unsigned long long>(cut.weight), cut.rep, cut.time);
  const auto bag = reconstruct_bag(g, o, cut.rep, cut.time);
  std::printf("bag members:");
  for (VertexId v = 0; v < g.n; ++v) {
    if (bag[v]) std::printf(" %u", v);
  }
  std::printf("\ncut verifies: %s\n",
              cut_weight(g, bag) == cut.weight ? "yes" : "no");
  return 0;
}
