// Community detection scenario: run AMPC-MinCut *on the model runtime* over
// a two-community social graph and read out the model costs (rounds, DHT
// traffic, memory) that the paper reasons about — the numbers a deployment
// on an actual RDMA cluster would care about.
#include <cstdio>

#include "ampc_algo/mincut_ampc.h"
#include "graph/generators.h"

int main() {
  using namespace ampccut;

  // Two 150-vertex communities, dense inside, 4 cross-links.
  const WGraph g = gen_planted_cut(300, 0.15, 4, 11);
  std::printf("social graph: n=%u m=%zu\n", g.n, g.m());

  ampc::AmpcMinCutOptions opt;
  opt.recursion.seed = 3;
  opt.recursion.trials = 2;
  opt.model_eps = 0.5;  // machines hold ~sqrt(n+m) words
  const auto r = ampc::ampc_approx_min_cut(g, opt);

  std::printf("cut weight            : %llu (the 4 cross-community links)\n",
              static_cast<unsigned long long>(r.weight));
  std::size_t side1 = 0;
  for (const auto s : r.side) side1 += s;
  std::printf("community sizes       : %zu / %zu\n", side1,
              static_cast<std::size_t>(g.n) - side1);
  std::printf("model rounds          : %llu measured + %llu cited = %llu\n",
              static_cast<unsigned long long>(r.measured_rounds),
              static_cast<unsigned long long>(r.charged_rounds),
              static_cast<unsigned long long>(r.model_rounds()));
  std::printf("recursion levels      : %u (O(log log n))\n", r.levels_used);
  std::printf("DHT traffic           : %llu reads, %llu writes\n",
              static_cast<unsigned long long>(r.dht_reads),
              static_cast<unsigned long long>(r.dht_writes));
  std::printf("peak DHT size (words) : %llu\n",
              static_cast<unsigned long long>(r.peak_table_words));
  std::printf("per-machine budget hit: %llu violations\n",
              static_cast<unsigned long long>(r.budget_violations));
  return 0;
}
