// Community detection as a SERVED scenario: a CutServer publishes a
// Gomory–Hu snapshot of a two-community social graph, requests read the
// community split off it, and an AMPC-MinCut cross-check — leased from the
// server's runtime arena — reports the model costs (rounds, DHT traffic,
// memory) the paper reasons about. update_graph() then re-links the
// communities and swaps a new epoch in without ever blocking queries.
#include <cstdio>

#include "graph/generators.h"
#include "serve/scenarios.h"

int main() {
  using namespace ampccut;

  // Two 150-vertex communities, dense inside, 4 cross-links.
  const WGraph g = gen_planted_cut(300, 0.15, 4, 11);
  std::printf("social graph: n=%u m=%zu\n", g.n, g.m());

  serve::CutServer server(g);

  ampc::AmpcMinCutOptions opt;
  opt.recursion.seed = 3;
  opt.recursion.trials = 2;
  opt.model_eps = 0.5;  // machines hold ~sqrt(n+m) words
  const auto report = serve::serve_community_cut(server, opt);
  const auto& r = report.ampc;

  std::printf("served epoch          : %llu\n",
              static_cast<unsigned long long>(report.epoch));
  std::printf("served cut weight     : %llu (the 4 cross-community links)\n",
              static_cast<unsigned long long>(report.cut.weight));
  std::size_t side1 = 0;
  for (const auto s : report.cut.side) side1 += s;
  std::printf("community sizes       : %zu / %zu\n", side1,
              static_cast<std::size_t>(g.n) - side1);
  std::printf("AMPC cross-check      : weight %llu (within 2+eps of served)\n",
              static_cast<unsigned long long>(r.weight));
  std::printf("model rounds          : %llu measured + %llu cited = %llu\n",
              static_cast<unsigned long long>(r.measured_rounds),
              static_cast<unsigned long long>(r.charged_rounds),
              static_cast<unsigned long long>(r.model_rounds()));
  std::printf("recursion levels      : %u (O(log log n))\n", r.levels_used);
  std::printf("DHT traffic           : %llu reads, %llu writes\n",
              static_cast<unsigned long long>(r.dht_reads),
              static_cast<unsigned long long>(r.dht_writes));
  std::printf("peak DHT size (words) : %llu\n",
              static_cast<unsigned long long>(r.peak_table_words));
  std::printf("per-machine budget hit: %llu violations\n",
              static_cast<unsigned long long>(r.budget_violations));

  // The communities grow 8 more cross-links; the server rebuilds and swaps.
  // Readers would keep answering on epoch 1 until the store lands.
  const WGraph g2 = gen_planted_cut(300, 0.15, 12, 11);
  server.update_graph(g2);
  const auto after = serve::serve_community_cut(server, opt);
  std::printf("after update_graph    : epoch %llu, served cut weight %llu\n",
              static_cast<unsigned long long>(after.epoch),
              static_cast<unsigned long long>(after.cut.weight));
  const auto stats = server.stats();
  std::printf("server counters       : %llu snapshots published, %llu "
              "rebuilds\n",
              static_cast<unsigned long long>(stats.snapshots_published),
              static_cast<unsigned long long>(stats.rebuilds));
  return 0;
}
