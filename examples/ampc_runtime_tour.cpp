// Tour of the AMPC runtime itself: rounds, frozen-read/staged-write hash
// tables, adaptive mid-round reads (the model's superpower over MPC), and
// the metrics the benches report. Useful as a template for writing new
// AMPC algorithms against this simulator.
#include <cstdio>

#include "ampc/runtime.h"
#include "ampc_algo/list_ranking.h"

int main() {
  using namespace ampccut::ampc;

  // 4096-word problem, machines hold ~64 words (eps = 0.5).
  Runtime rt(Config::for_problem(4096, 0.5));
  std::printf("machine memory: %llu words\n",
              static_cast<unsigned long long>(
                  rt.config().machine_memory_words));

  // A distributed hash table: writes staged during a round become visible
  // only after the round barrier (AMPC's H_{i-1} -> H_i discipline).
  Table<std::uint64_t, std::uint64_t> table(rt, "tour");
  rt.round("write_phase", 8, [&](MachineContext& ctx) {
    table.put(ctx.machine_id(), ctx.machine_id() * 100);
    // Not visible yet: this read sees the PREVIOUS round's table.
    if (!table.get(ctx.machine_id()).has_value()) {
      // expected — staged writes are invisible mid-round
    }
  });

  // Adaptive reads: a machine may chase pointers through the table within a
  // single round — the capability MPC lacks. Build a chain and walk it.
  rt.round("adaptive_walk", 1, [&](MachineContext&) {
    std::uint64_t hops = 0;
    std::uint64_t cursor = 0;
    while (auto v = table.get(cursor)) {
      ++hops;
      if (*v / 100 == 7) break;
      cursor = *v / 100 + 1;
    }
    std::printf("adaptive walk made %llu dependent reads in ONE round\n",
                static_cast<unsigned long long>(hops));
  });

  // The flagship primitive: list ranking in O(1/eps) rounds.
  const std::uint64_t n = 3000;
  std::vector<std::uint64_t> next(n);
  for (std::uint64_t i = 0; i < n; ++i) next[i] = (i + 1 < n) ? i + 1 : kNoNext;
  const auto rank = list_rank(rt, next, std::vector<std::int64_t>(n, 1));
  std::printf("list_rank(%llu elements): head rank %lld (== n)\n",
              static_cast<unsigned long long>(n),
              static_cast<long long>(rank[0]));

  // Table leases: how the algorithm layer actually creates tables. A lease
  // behaves like a pointer to the table; releasing it returns the storage to
  // the runtime's pool, and the next lease of the same concrete type reuses
  // it — zero heap churn in steady state, identical semantics otherwise
  // (DESIGN.md "Table and runtime pooling").
  {
    auto scratch = rt.lease_dense<std::uint64_t>("tour.scratch", 64, 0);
    rt.round("leased_write", 4, [&](MachineContext& ctx) {
      scratch->put(ctx.machine_id(), 1);
    });
  }  // lease released here; storage parked in the pool
  {
    auto scratch = rt.lease_dense<std::uint64_t>("tour.scratch2", 64, 0);
    std::printf("\nsecond lease reused pooled storage (reuses so far: %llu); "
                "contents reset: slot 0 = %llu\n",
                static_cast<unsigned long long>(rt.pool_stats().reuses),
                static_cast<unsigned long long>(scratch->raw(0)));
  }

  const Metrics& m = rt.metrics();
  std::printf("\nmetrics:\n  rounds          : %llu measured, %llu cited\n"
              "  DHT traffic     : %llu reads, %llu writes\n"
              "  max per machine : %llu words in one round\n"
              "  budget overruns : %llu\n",
              static_cast<unsigned long long>(m.rounds),
              static_cast<unsigned long long>(m.charged_rounds),
              static_cast<unsigned long long>(m.dht_reads),
              static_cast<unsigned long long>(m.dht_writes),
              static_cast<unsigned long long>(m.max_machine_traffic),
              static_cast<unsigned long long>(m.budget_violations.load()));
  std::printf("\nper-label rounds:\n");
  for (const auto& [label, rounds] : m.rounds_by_label) {
    std::printf("  %-28s %llu\n", label.c_str(),
                static_cast<unsigned long long>(rounds));
  }
  return 0;
}
